package lstore

import (
	"fmt"

	"lstore/internal/core"
	"lstore/internal/types"
)

// Query is a composable read over one table. Build one with Table.Query,
// shape it with Select / Where / At, and run it with a terminal verb:
//
//	err := tbl.Query().
//		Select("balance", "region").
//		Where(lstore.Eq("region", lstore.Int(3)), lstore.Between("balance", lstore.Int(0), lstore.Int(100))).
//		At(ts).
//		Rows(func(r *lstore.RowView) bool {
//			total += r.Int("balance")
//			return true
//		})
//
// Every terminal compiles the query into a plan over the shared columnar
// scan engine: equality predicates on columns with declared secondary
// indexes become index point-probes, and everything else becomes a bulk
// scan with the predicates pushed down — evaluated vectorized over the
// decoded column pages before any row materialization. Predicates combine
// with AND. A Query reads a consistent snapshot (At, or the current time)
// and never blocks writers.
//
// A Query is not safe for concurrent use; build one per goroutine.
type Query struct {
	tbl   *Table
	cols  []string
	preds []Predicate
	ts    Timestamp
	tsSet bool
}

// Query starts a read over the table.
func (tb *Table) Query() *Query { return &Query{tbl: tb} }

// Select adds projected columns (Rows materializes exactly these, in this
// order). A query that never calls Select projects every column. Keys,
// Count and Aggregate ignore the projection.
func (q *Query) Select(cols ...string) *Query {
	q.cols = append(q.cols, cols...)
	return q
}

// Where adds predicates; all predicates must hold (AND).
func (q *Query) Where(preds ...Predicate) *Query {
	q.preds = append(q.preds, preds...)
	return q
}

// At pins the query's snapshot. Without At, each terminal reads the current
// time when it runs.
func (q *Query) At(ts Timestamp) *Query {
	q.ts = ts
	q.tsSet = true
	return q
}

func (q *Query) snapshot() Timestamp {
	if q.tsSet {
		return q.ts
	}
	return q.tbl.db.Now()
}

// Rows streams every matching record in primary-RID order through fn; fn
// returning false stops the query. The *RowView is a zero-allocation cursor
// valid only inside the callback — its accessors decode lazily from the
// engine's pooled scratch, and the underlying row is overwritten after fn
// returns (call RowView.Row to materialize a copy).
func (q *Query) Rows(fn func(r *RowView) bool) error {
	proj := q.cols
	if len(proj) == 0 {
		proj = q.tbl.Columns()
	}
	p, err := q.tbl.planQuery(proj, q.preds, nil, true)
	if err != nil {
		return err
	}
	if p.kind == planEmpty {
		return nil
	}
	ts := q.snapshot()
	rv := RowView{
		tbl:   q.tbl,
		cols:  p.readCols[:p.nProj],
		names: p.projNames,
	}
	emit := func(vals []uint64) bool {
		rv.vals = vals
		rv.key = types.DecodeInt64(vals[p.keyPos])
		return fn(&rv)
	}
	if p.kind == planProbe {
		return q.tbl.store.ProbeFiltered(ts, p.probeCol, p.probeSlot, p.readCols, p.preds, emit)
	}
	q.tbl.store.ScanFiltered(ts, p.readCols, p.preds, 0, ^types.RID(0), emit)
	return nil
}

// Keys returns the primary keys of every matching record, in primary-RID
// order.
func (q *Query) Keys() ([]int64, error) {
	p, err := q.tbl.planQuery(nil, q.preds, nil, true)
	if err != nil {
		return nil, err
	}
	if p.kind == planEmpty {
		return nil, nil
	}
	ts := q.snapshot()
	var keys []int64
	emit := func(vals []uint64) bool {
		keys = append(keys, types.DecodeInt64(vals[p.keyPos]))
		return true
	}
	if p.kind == planProbe {
		// Evaluate the probe before reading keys: the emit closure appends
		// to it, and Go does not order the return operands.
		err := q.tbl.store.ProbeFiltered(ts, p.probeCol, p.probeSlot, p.readCols, p.preds, emit)
		return keys, err
	}
	q.tbl.store.ScanFiltered(ts, p.readCols, p.preds, 0, ^types.RID(0), emit)
	return keys, nil
}

// Count returns the number of matching records.
func (q *Query) Count() (int64, error) {
	res, err := q.Aggregate(Count())
	if err != nil {
		return 0, err
	}
	return res.Rows(0), nil
}

// Aggregate computes the requested aggregates over the matching records in
// one pass through the engine's aggregate kernels (bulk plans fan the fold
// across the scan worker pool and merge exact integer partials, so results
// are deterministic).
func (q *Query) Aggregate(aggs ...Agg) (AggResult, error) {
	if len(aggs) == 0 {
		return AggResult{}, fmt.Errorf("lstore: Aggregate with no aggregates")
	}
	p, err := q.tbl.planQuery(nil, q.preds, aggs, false)
	if err != nil {
		return AggResult{}, err
	}
	res := AggResult{
		tbl:    q.tbl,
		aggs:   aggs,
		cols:   make([]int, len(aggs)),
		states: make([]core.AggState, len(aggs)),
	}
	for i, sp := range p.aggs {
		if sp.Op == core.AggCount {
			res.cols[i] = -1
		} else {
			res.cols[i] = p.readCols[sp.Idx]
		}
	}
	if p.kind == planEmpty {
		return res, nil
	}
	ts := q.snapshot()
	if p.kind == planProbe {
		err := q.tbl.store.ProbeFiltered(ts, p.probeCol, p.probeSlot, p.readCols, p.preds, func(vals []uint64) bool {
			core.FoldAgg(res.states, p.aggs, vals)
			return true
		})
		return res, err
	}
	res.states = q.tbl.store.ScanAggregate(ts, p.readCols, p.preds, p.aggs, 0, ^types.RID(0))
	return res, nil
}

// ---------------------------------------------------------------------------
// Aggregates

// Agg names one aggregate for Query.Aggregate; build with Sum, Count, Min,
// Max.
type Agg struct {
	op  core.AggOp
	col string
}

// Sum aggregates SUM(col) over matching rows (col must be Int64; nulls are
// skipped).
func Sum(col string) Agg { return Agg{op: core.AggSum, col: col} }

// Count counts matching rows.
func Count() Agg { return Agg{op: core.AggCount} }

// Min aggregates MIN(col) over matching rows (col must be Int64; nulls are
// skipped).
func Min(col string) Agg { return Agg{op: core.AggMin, col: col} }

// Max aggregates MAX(col) over matching rows (col must be Int64; nulls are
// skipped).
func Max(col string) Agg { return Agg{op: core.AggMax, col: col} }

// AggResult holds Query.Aggregate's results, indexed by the order the
// aggregates were requested.
type AggResult struct {
	tbl    *Table
	aggs   []Agg
	cols   []int // schema column per aggregate (-1 for Count)
	states []core.AggState
}

// Len returns the number of aggregates.
func (ar AggResult) Len() int { return len(ar.aggs) }

// Rows returns how many rows contributed to aggregate i: matched rows for
// Count, non-null values for Sum/Min/Max.
func (ar AggResult) Rows(i int) int64 { return ar.states[i].Count }

// Int returns aggregate i as an int64: the sum, the count, or the min/max
// value (0 when no non-null value contributed — check Rows or Value).
func (ar AggResult) Int(i int) int64 {
	st := ar.states[i]
	switch ar.aggs[i].op {
	case core.AggCount:
		return st.Count
	case core.AggSum:
		return st.Sum
	case core.AggMin:
		if !st.Seen {
			return 0
		}
		return types.DecodeInt64(st.MinSlot)
	case core.AggMax:
		if !st.Seen {
			return 0
		}
		return types.DecodeInt64(st.MaxSlot)
	}
	return 0
}

// Value returns aggregate i as a typed Value; Min/Max over zero contributing
// rows yield Null.
func (ar AggResult) Value(i int) Value {
	st := ar.states[i]
	switch ar.aggs[i].op {
	case core.AggCount:
		return Int(st.Count)
	case core.AggSum:
		return Int(st.Sum)
	case core.AggMin:
		if !st.Seen {
			return Null()
		}
		return ar.tbl.store.DecodeSlot(ar.cols[i], st.MinSlot)
	case core.AggMax:
		if !st.Seen {
			return Null()
		}
		return ar.tbl.store.DecodeSlot(ar.cols[i], st.MaxSlot)
	}
	return Null()
}

// ---------------------------------------------------------------------------
// Predicates

type predOp uint8

const (
	opEq predOp = iota
	opNe
	opLt
	opLe
	opGt
	opGe
	opBetween
	opIsNull
	opNotNull
)

// Predicate is one condition over a column; build with Eq, Ne, Lt, Le, Gt,
// Ge, Between, IsNull or NotNull. Predicates are type-checked against the
// schema when the query is planned: a String value against an Int64 column
// (or vice versa) fails with ErrTypeMismatch, as do ordered comparisons on
// String columns (dictionary codes carry no order).
type Predicate struct {
	col   string
	op    predOp
	v, v2 Value
}

// Eq matches rows whose col equals v. Eq with Null matches IS NULL.
func Eq(col string, v Value) Predicate { return Predicate{col: col, op: opEq, v: v} }

// Ne matches rows whose col differs from v; null never matches (except
// Ne with Null, which matches IS NOT NULL).
func Ne(col string, v Value) Predicate { return Predicate{col: col, op: opNe, v: v} }

// Lt matches rows whose Int64 col is strictly below v.
func Lt(col string, v Value) Predicate { return Predicate{col: col, op: opLt, v: v} }

// Le matches rows whose Int64 col is at most v.
func Le(col string, v Value) Predicate { return Predicate{col: col, op: opLe, v: v} }

// Gt matches rows whose Int64 col is strictly above v.
func Gt(col string, v Value) Predicate { return Predicate{col: col, op: opGt, v: v} }

// Ge matches rows whose Int64 col is at least v.
func Ge(col string, v Value) Predicate { return Predicate{col: col, op: opGe, v: v} }

// Between matches rows whose Int64 col lies in [lo, hi] (inclusive).
func Between(col string, lo, hi Value) Predicate {
	return Predicate{col: col, op: opBetween, v: lo, v2: hi}
}

// IsNull matches rows whose col is null.
func IsNull(col string) Predicate { return Predicate{col: col, op: opIsNull} }

// NotNull matches rows whose col is not null.
func NotNull(col string) Predicate { return Predicate{col: col, op: opNotNull} }
