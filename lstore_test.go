package lstore

import (
	"bytes"
	"errors"
	"testing"
)

func accountsSchema() Schema {
	return NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "owner", Type: String},
		Column{Name: "balance", Type: Int64},
		Column{Name: "region", Type: Int64},
	)
}

func openWithTable(t *testing.T, opts ...TableOptions) (*DB, *Table) {
	t.Helper()
	db := Open()
	t.Cleanup(db.Close)
	tbl, err := db.CreateTable("accounts", accountsSchema(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestPublicAPICRUD(t *testing.T) {
	db, tbl := openWithTable(t)
	tx := db.Begin(ReadCommitted)
	if err := tbl.Insert(tx, Row{"id": Int(1), "owner": Str("ada"), "balance": Int(100), "region": Int(7)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(tx, Row{"id": Int(2), "owner": Str("bob"), "balance": Int(50)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = db.Begin(ReadCommitted)
	row, ok, err := tbl.Get(tx, 1)
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if row["owner"].Str() != "ada" || row["balance"].Int() != 100 {
		t.Fatalf("row = %v", row)
	}
	// Omitted column was null.
	row2, _, _ := tbl.Get(tx, 2, "region")
	if !row2["region"].IsNull() {
		t.Fatalf("region should be null: %v", row2)
	}
	tx.Abort()

	// Update + Delete.
	tx = db.Begin(ReadCommitted)
	if err := tbl.Update(tx, 1, Row{"balance": Int(90), "owner": Str("ada lovelace")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(tx, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin(ReadCommitted)
	row, _, _ = tbl.Get(tx, 1, "owner", "balance")
	if row["owner"].Str() != "ada lovelace" || row["balance"].Int() != 90 {
		t.Fatalf("after update: %v", row)
	}
	if _, ok, _ := tbl.Get(tx, 2); ok {
		t.Fatal("deleted row visible")
	}
	tx.Abort()
}

func TestPublicAPIErrors(t *testing.T) {
	db, tbl := openWithTable(t)
	tx := db.Begin(ReadCommitted)
	defer tx.Abort()
	if err := tbl.Insert(tx, Row{"nope": Int(1)}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if err := tbl.Update(tx, 1, Row{"balance": Int(1)}); err != ErrNotFound {
		t.Fatalf("update missing: %v", err)
	}
	if _, _, err := tbl.Get(tx, 1, "nope"); err == nil {
		t.Fatal("unknown get column accepted")
	}
	if _, _, err := tbl.Sum(db.Now(), "owner"); err == nil {
		t.Fatal("sum over string accepted")
	}
	if _, err := db.CreateTable("accounts", accountsSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, ok := db.Table("accounts"); !ok {
		t.Fatal("table lookup failed")
	}
	if got := db.TableNames(); len(got) != 1 || got[0] != "accounts" {
		t.Fatalf("names = %v", got)
	}
}

func TestSumScanAndTimeTravel(t *testing.T) {
	db, tbl := openWithTable(t)
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "balance": Int(i * 10), "owner": Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	then := db.Now()
	sum, rows, err := tbl.Sum(then, "balance")
	if err != nil || sum != 450 || rows != 10 {
		t.Fatalf("sum = %d/%d %v", sum, rows, err)
	}
	// Mutate and check both snapshots.
	tx = db.Begin(ReadCommitted)
	if err := tbl.Update(tx, 3, Row{"balance": Int(1000)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	sum, _, _ = tbl.Sum(db.Now(), "balance")
	if sum != 450-30+1000 {
		t.Fatalf("new sum = %d", sum)
	}
	sum, _, _ = tbl.Sum(then, "balance")
	if sum != 450 {
		t.Fatalf("old snapshot sum = %d", sum)
	}
	old, ok, _ := tbl.GetAt(then, 3, "balance")
	if !ok || old["balance"].Int() != 30 {
		t.Fatalf("GetAt = %v %v", old, ok)
	}
	// Scan with callback.
	seen := 0
	err = tbl.Scan(db.Now(), []string{"balance"}, func(key int64, row Row) bool {
		seen++
		return true
	})
	if err != nil || seen != 10 {
		t.Fatalf("scan visited %d, err %v", seen, err)
	}
}

func TestSecondaryIndexAPI(t *testing.T) {
	db, tbl := openWithTable(t, TableOptions{SecondaryIndexes: []string{"region"}})
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 6; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "region": Int(i % 2), "balance": Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	keys, err := tbl.FindBy(db.Now(), "region", Int(1))
	if err != nil || len(keys) != 3 {
		t.Fatalf("FindBy = %v %v", keys, err)
	}
	if _, err := tbl.FindBy(db.Now(), "balance", Int(1)); err == nil {
		t.Fatal("FindBy without index accepted")
	}
}

func TestConflictSurfacesAndRetryWorks(t *testing.T) {
	db, tbl := openWithTable(t)
	tx := db.Begin(ReadCommitted)
	if err := tbl.Insert(tx, Row{"id": Int(1), "balance": Int(0)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	t1 := db.Begin(ReadCommitted)
	t2 := db.Begin(ReadCommitted)
	if err := tbl.Update(t1, 1, Row{"balance": Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(t2, 1, Row{"balance": Int(2)}); err != ErrConflict {
		t.Fatalf("conflict err = %v", err)
	}
	t2.Abort()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Retry succeeds.
	t3 := db.Begin(ReadCommitted)
	if err := tbl.Update(t3, 1, Row{"balance": Int(2)}); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAndCompressThroughAPI(t *testing.T) {
	db, tbl := openWithTable(t, TableOptions{RangeSize: 64, MergeBatch: 8, DisableAutoMerge: true})
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 64; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "balance": Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		tx := db.Begin(ReadCommitted)
		for i := int64(0); i < 8; i++ {
			if err := tbl.Update(tx, i, Row{"balance": Int(int64(r + 2))}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if n := tbl.Merge(); n == 0 {
		t.Fatal("merge consumed nothing")
	}
	if tbl.Stats().Merges == 0 {
		t.Fatal("stats missing merges")
	}
	sum, _, _ := tbl.Sum(db.Now(), "balance")
	if sum != 56+8*5 {
		t.Fatalf("sum after merges = %d", sum)
	}
	tbl.CompressHistory()
}

// failingWriter errors on every Write: the WAL's buffered appends succeed
// but the commit-point flush fails.
type failingWriter struct{ writes int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	return 0, errors.New("simulated log device failure")
}

// TestWALCommitFailureContract pins the Txn.Commit durability contract: when
// the WAL fails at the commit point, the error wraps ErrDurabilityUnknown,
// the transaction's effects remain visible (the in-memory commit is
// irrevocable), and a subsequent Abort appends no abort record that could
// contradict a durable commit record on recovery.
func TestWALCommitFailureContract(t *testing.T) {
	db := Open(WithWAL(&failingWriter{}, nil))
	defer db.Close()
	tbl, err := db.CreateTable("accounts", accountsSchema())
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(ReadCommitted)
	if err := tbl.Insert(tx, Row{"id": Int(1), "owner": Str("a"), "balance": Int(10)}); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	if !errors.Is(err, ErrDurabilityUnknown) {
		t.Fatalf("Commit error = %v, want ErrDurabilityUnknown", err)
	}
	// The commit happened in memory: effects are visible to later readers.
	tx2 := db.Begin(ReadCommitted)
	defer tx2.Abort()
	row, ok, err := tbl.Get(tx2, 1, "balance")
	if err != nil || !ok || row["balance"].Int() != 10 {
		t.Fatalf("committed row not visible after WAL failure: %v %v %v", row, ok, err)
	}
	// Abort after the failed-durability commit must be a no-op.
	before := db.logger.Appended()
	tx.Abort()
	if got := db.logger.Appended(); got != before {
		t.Fatalf("Abort after commit appended %d log records", got-before)
	}
	// A retried Commit fails (already committed) but must not append an
	// abort record either — recovery could see both a commit and an abort
	// for the same transaction.
	if err := tx.Commit(); err == nil {
		t.Fatal("retried Commit unexpectedly succeeded")
	}
	if got := db.logger.Appended(); got != before {
		t.Fatalf("retried Commit appended %d log records", got-before)
	}
}

func TestWALRecovery(t *testing.T) {
	var log bytes.Buffer
	db := Open(WithWAL(&log, nil))
	tbl, err := db.CreateTable("accounts", accountsSchema())
	if err != nil {
		t.Fatal(err)
	}
	// Committed work.
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 5; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "owner": Str("o"), "balance": Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin(ReadCommitted)
	if err := tbl.Update(tx, 2, Row{"balance": Int(222), "owner": Str("zoe")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(tx, 4); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Uncommitted work that must vanish.
	lost := db.Begin(ReadCommitted)
	if err := tbl.Insert(lost, Row{"id": Int(99), "balance": Int(9999)}); err != nil {
		t.Fatal(err)
	}
	// (no commit — crash)
	db.Close()

	// Recover into a fresh database.
	db2 := Open()
	defer db2.Close()
	tbl2, err := db2.CreateTable("accounts", accountsSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(db2, nil, bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	tx2 := db2.Begin(ReadCommitted)
	defer tx2.Abort()
	row, ok, _ := tbl2.Get(tx2, 2)
	if !ok || row["balance"].Int() != 222 || row["owner"].Str() != "zoe" {
		t.Fatalf("recovered row 2 = %v %v", row, ok)
	}
	if _, ok, _ := tbl2.Get(tx2, 4); ok {
		t.Fatal("deleted row resurrected")
	}
	if _, ok, _ := tbl2.Get(tx2, 99); ok {
		t.Fatal("uncommitted insert recovered")
	}
	sum, rows, _ := tbl2.Sum(db2.Now(), "balance")
	if rows != 4 || sum != 0+1+222+3 {
		t.Fatalf("recovered sum = %d/%d", sum, rows)
	}
}

func TestWALGroupCommitAcrossTxns(t *testing.T) {
	var log bytes.Buffer
	syncs := 0
	db := Open(WithWAL(&log, func() { syncs++ }))
	defer db.Close()
	tbl, _ := db.CreateTable("accounts", accountsSchema())
	for i := int64(0); i < 3; i++ {
		tx := db.Begin(ReadCommitted)
		if err := tbl.Insert(tx, Row{"id": Int(i), "balance": Int(1)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if syncs != 3 {
		t.Fatalf("syncs = %d, want 3 (one per commit)", syncs)
	}
}

func TestRowLayoutOptionThroughAPI(t *testing.T) {
	db := Open()
	defer db.Close()
	tbl, err := db.CreateTable("rows", accountsSchema(), TableOptions{RowLayout: true, RangeSize: 64, DisableAutoMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 64; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "balance": Int(2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tbl.Merge()
	sum, rows, _ := tbl.Sum(db.Now(), "balance")
	if sum != 128 || rows != 64 {
		t.Fatalf("row layout sum = %d/%d", sum, rows)
	}
}
