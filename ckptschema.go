package lstore

import (
	"bufio"
	"fmt"
	"io"

	"lstore/internal/wal"
)

// CheckpointTableDecl is one table's declaration as recorded in a
// checkpoint image: everything CreateTable needs to re-create it before
// Recover. Declarations come back in table-id order — the creation order
// Recover requires.
type CheckpointTableDecl struct {
	Name             string
	Key              string   // primary-key column name
	Columns          []Column // schema order
	SecondaryIndexes []string // column names with declared secondary indexes
}

// Schema builds the CreateTable schema for the declaration.
func (d CheckpointTableDecl) Schema() Schema { return NewSchema(d.Key, d.Columns...) }

// CheckpointSchema reads the table declarations out of a checkpoint image
// without restoring any rows — the bootstrap step of a process restart:
// tables must exist (same names, same order, same schemas) before Recover
// replays the image, and table creation is not WAL-logged, so the image is
// the only durable record of the schema. Row batches are skipped
// structurally (frames are CRC-verified but rows are not parsed); a torn or
// corrupt image fails loudly, exactly like restore.
func CheckpointSchema(r io.Reader) ([]CheckpointTableDecl, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr, err := wal.ReadFrame(br)
	if err != nil {
		return nil, fmt.Errorf("lstore: checkpoint header: %w", err)
	}
	hp := &ckptParser{p: hdr}
	if hp.byte() != frameHeader || string(hp.bytes(len(ckptMagic))) != ckptMagic {
		return nil, fmt.Errorf("lstore: not a checkpoint image")
	}
	if v := hp.uvarint(); !ckptVersionOK(v) {
		return nil, fmt.Errorf("lstore: checkpoint version %d unsupported", v)
	}
	hp.uvarint() // timestamp
	hp.uvarint() // watermark
	nTables := hp.uvarint()
	if hp.err != nil {
		return nil, fmt.Errorf("lstore: checkpoint header: %w", hp.err)
	}

	var decls []CheckpointTableDecl
	for {
		p, err := wal.ReadFrame(br)
		if err == io.EOF {
			return nil, fmt.Errorf("lstore: checkpoint truncated before end frame: %w", wal.ErrTornFrame)
		}
		if err != nil {
			return nil, fmt.Errorf("lstore: checkpoint: %w", err)
		}
		fp := &ckptParser{p: p}
		switch fp.byte() {
		case frameTable:
			d, err := parseCkptTableDecl(fp)
			if err != nil {
				return nil, err
			}
			if uint64(len(decls)) >= nTables {
				return nil, fmt.Errorf("lstore: checkpoint holds more tables than its header declares")
			}
			decls = append(decls, d)
		case frameRowBatch, frameTableEnd, framePageRange:
			// Schema-only walk: row and page payloads are covered by the
			// frame CRC, which ReadFrame already verified.
		case frameEnd:
			if uint64(len(decls)) != nTables {
				return nil, fmt.Errorf("lstore: checkpoint holds %d tables, header declares %d", len(decls), nTables)
			}
			return decls, nil
		default:
			return nil, fmt.Errorf("lstore: checkpoint frame tag %d unknown", p[0])
		}
	}
}

// parseCkptTableDecl decodes one frameTable payload into a declaration
// (the same wire layout verifyCkptTable checks against live tables).
func parseCkptTableDecl(fp *ckptParser) (CheckpointTableDecl, error) {
	var d CheckpointTableDecl
	id := fp.uvarint()
	d.Name = fp.str()
	key := fp.uvarint()
	nCols := fp.uvarint()
	for i := uint64(0); i < nCols; i++ {
		cn := fp.str()
		ct := fp.byte()
		d.Columns = append(d.Columns, Column{Name: cn, Type: ColType(ct)})
	}
	nSec := fp.uvarint()
	for i := uint64(0); i < nSec; i++ {
		ci := fp.uvarint()
		if ci < uint64(len(d.Columns)) {
			d.SecondaryIndexes = append(d.SecondaryIndexes, d.Columns[ci].Name)
		}
	}
	if fp.err != nil {
		return d, fmt.Errorf("lstore: checkpoint table frame %d: %w", id, fp.err)
	}
	if key >= uint64(len(d.Columns)) {
		return d, fmt.Errorf("lstore: checkpoint table %q declares key column %d of %d", d.Name, key, len(d.Columns))
	}
	d.Key = d.Columns[key].Name
	return d, nil
}
