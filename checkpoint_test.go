package lstore

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lstore/internal/wal"
)

func ckptSchema() Schema {
	return NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "name", Type: String},
		Column{Name: "v", Type: Int64},
	)
}

// tableState snapshots every live row of tbl as of ts.
func tableState(t *testing.T, tbl *Table, ts Timestamp) map[int64]Row {
	t.Helper()
	rows := map[int64]Row{}
	if err := tbl.Scan(ts, nil, func(key int64, row Row) bool {
		cp := Row{}
		for k, v := range row {
			cp[k] = v
		}
		rows[key] = cp
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

func assertSameState(t *testing.T, want, got map[int64]Row, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for key, wrow := range want {
		grow, ok := got[key]
		if !ok {
			t.Fatalf("%s: key %d missing", label, key)
		}
		for col, wv := range wrow {
			if !wv.Equal(grow[col]) {
				t.Fatalf("%s: key %d col %s = %v, want %v", label, key, col, grow[col], wv)
			}
		}
	}
}

func mustCommit(t *testing.T, tx *Txn) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointTailRestartReplaysOnlyTail pins the acceptance criterion:
// restart from checkpoint + log replays exactly the transactions whose
// commit record lies above the watermark — every redone record has
// LSN > watermark — and the result equals the crashed state.
func TestCheckpointTailRestartReplaysOnlyTail(t *testing.T) {
	var log bytes.Buffer
	db := Open(WithWAL(&log, nil))
	tbl, err := db.CreateTable("t", ckptSchema(), TableOptions{SecondaryIndexes: []string{"v"}})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-checkpoint history: 100 inserts (one txn) + 40 update txns.
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 100; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "name": Str("n"), "v": Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	for i := int64(0); i < 40; i++ {
		tx := db.Begin(ReadCommitted)
		if err := tbl.Update(tx, i%100, Row{"v": Int(1000 + i)}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}

	var ckpt bytes.Buffer
	info, err := db.Checkpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 100 || info.Tables != 1 || info.LSN == 0 {
		t.Fatalf("checkpoint info = %+v", info)
	}

	// Tail: 15 update txns, 5 inserts, 3 deletes — 23 txns, 23 ops.
	tailTxns := 0
	for i := int64(0); i < 15; i++ {
		tx := db.Begin(ReadCommitted)
		if err := tbl.Update(tx, i, Row{"name": Str("tail"), "v": Int(-i)}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		tailTxns++
	}
	for i := int64(200); i < 205; i++ {
		tx := db.Begin(ReadCommitted)
		if err := tbl.Insert(tx, Row{"id": Int(i), "v": Int(i)}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		tailTxns++
	}
	for i := int64(90); i < 93; i++ {
		tx := db.Begin(ReadCommitted)
		if err := tbl.Delete(tx, i); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		tailTxns++
	}
	want := tableState(t, tbl, db.Now())
	db.Close()

	// Every record recovery will redo must live above the watermark.
	records, err := wal.ReadAll(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	redo := wal.CommittedTxns(records, info.LSN)
	if len(redo) != tailTxns {
		t.Fatalf("log tail holds %d committed txns above watermark, want %d", len(redo), tailTxns)
	}
	for _, g := range redo {
		for _, op := range g.Ops {
			if op.LSN <= info.LSN {
				t.Fatalf("redo op LSN %d at or below watermark %d", op.LSN, info.LSN)
			}
		}
	}

	db2 := Open()
	defer db2.Close()
	tbl2, err := db2.CreateTable("t", ckptSchema(), TableOptions{SecondaryIndexes: []string{"v"}})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Recover(db2, bytes.NewReader(ckpt.Bytes()), bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Watermark != info.LSN {
		t.Fatalf("stats.Watermark = %d, want %d", stats.Watermark, info.LSN)
	}
	if stats.CheckpointRows != 100 {
		t.Fatalf("stats.CheckpointRows = %d, want 100", stats.CheckpointRows)
	}
	if stats.RedoneTxns != tailTxns || stats.RedoneOps != tailTxns {
		t.Fatalf("redone %d txns / %d ops, want %d/%d", stats.RedoneTxns, stats.RedoneOps, tailTxns, tailTxns)
	}
	if stats.SkippedTxns != 41 { // 1 insert txn + 40 update txns below watermark
		t.Fatalf("stats.SkippedTxns = %d, want 41", stats.SkippedTxns)
	}
	assertSameState(t, want, tableState(t, tbl2, db2.Now()), "checkpoint+tail restart")

	// The secondary index survived the bulk-load path too.
	keys, err := tbl2.FindBy(db2.Now(), "v", Int(-3))
	if err != nil || len(keys) != 1 || keys[0] != 3 {
		t.Fatalf("FindBy after restore = %v, %v", keys, err)
	}
}

// TestRecoverRelogsIntoNewWAL pins the satellite-2 regression: recovery
// into a DB opened WithWAL re-logs everything it applies, so
// recover → write → crash → recover round-trips on the NEW log alone with
// zero lost committed transactions.
func TestRecoverRelogsIntoNewWAL(t *testing.T) {
	var oldLog bytes.Buffer
	db := Open(WithWAL(&oldLog, nil))
	tbl, _ := db.CreateTable("t", ckptSchema())
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 20; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "name": Str("a"), "v": Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	var ckpt bytes.Buffer
	if _, err := db.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin(ReadCommitted)
	if err := tbl.Update(tx, 7, Row{"v": Int(777)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	db.Close()

	// First recovery, into a database with a fresh WAL attached.
	var newLog bytes.Buffer
	db2 := Open(WithWAL(&newLog, nil))
	tbl2, _ := db2.CreateTable("t", ckptSchema())
	if _, err := Recover(db2, bytes.NewReader(ckpt.Bytes()), bytes.NewReader(oldLog.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Post-recovery work, logged to the new WAL only.
	tx = db2.Begin(ReadCommitted)
	if err := tbl2.Insert(tx, Row{"id": Int(100), "name": Str("post"), "v": Int(1)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	tx = db2.Begin(ReadCommitted)
	if err := tbl2.Delete(tx, 3); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	want := tableState(t, tbl2, db2.Now())
	db2.Close()

	// Second crash: the new log alone must rebuild everything — the
	// pre-crash history (re-logged) plus the post-recovery transactions.
	db3 := Open()
	defer db3.Close()
	tbl3, _ := db3.CreateTable("t", ckptSchema())
	stats, err := Recover(db3, nil, bytes.NewReader(newLog.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.RedoneOps == 0 {
		t.Fatal("second recovery redid nothing; first recovery logged nothing")
	}
	assertSameState(t, want, tableState(t, tbl3, db3.Now()), "recover->write->crash->recover")
}

// TestWALTruncationAfterCheckpoint: truncating at the watermark shrinks the
// log, and checkpoint + retained tail still recovers the full state.
func TestWALTruncationAfterCheckpoint(t *testing.T) {
	sink := &wal.BufferSink{}
	db := Open(WithWAL(sink, nil))
	tbl, _ := db.CreateTable("t", ckptSchema())
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 50; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "v": Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	for i := int64(0); i < 30; i++ {
		tx := db.Begin(ReadCommitted)
		if err := tbl.Update(tx, i, Row{"v": Int(100 + i)}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}

	var ckpt bytes.Buffer
	info, err := db.Checkpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	before := sink.Len()
	actual, err := db.TruncateWAL(info.LSN)
	if err != nil {
		t.Fatal(err)
	}
	if actual != info.LSN {
		t.Fatalf("truncated to %d, want watermark %d (no active txns)", actual, info.LSN)
	}
	if sink.Len() >= before {
		t.Fatalf("log did not shrink: %d -> %d bytes", before, sink.Len())
	}

	// Tail after truncation.
	for i := int64(0); i < 10; i++ {
		tx := db.Begin(ReadCommitted)
		if err := tbl.Update(tx, i, Row{"name": Str("x")}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	want := tableState(t, tbl, db.Now())
	db.Close()

	db2 := Open()
	defer db2.Close()
	tbl2, _ := db2.CreateTable("t", ckptSchema())
	stats, err := Recover(db2, bytes.NewReader(ckpt.Bytes()), sink.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if stats.RedoneTxns != 10 {
		t.Fatalf("redone %d txns from retained tail, want 10", stats.RedoneTxns)
	}
	assertSameState(t, want, tableState(t, tbl2, db2.Now()), "checkpoint+truncated tail")
}

// TestTruncationRespectsActiveTxns: the safe truncation point stops below
// the begin LSN of a still-open transaction, so its operation records
// survive truncation and its later commit replays completely.
func TestTruncationRespectsActiveTxns(t *testing.T) {
	sink := &wal.BufferSink{}
	db := Open(WithWAL(sink, nil))
	tbl, _ := db.CreateTable("t", ckptSchema())
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "v": Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	// Open transaction B with an operation already logged...
	txB := db.Begin(ReadCommitted)
	if err := tbl.Insert(txB, Row{"id": Int(100), "v": Int(100)}); err != nil {
		t.Fatal(err)
	}
	// ...then another committed transaction and a checkpoint.
	tx = db.Begin(ReadCommitted)
	if err := tbl.Insert(tx, Row{"id": Int(11), "v": Int(11)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	var ckpt bytes.Buffer
	info, err := db.Checkpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	actual, err := db.TruncateWAL(info.LSN)
	if err != nil {
		t.Fatal(err)
	}
	if actual >= info.LSN {
		t.Fatalf("truncation watermark %d not bounded below open txn (checkpoint LSN %d)", actual, info.LSN)
	}
	// B commits after the checkpoint: above the watermark, ops retained.
	mustCommit(t, txB)
	want := tableState(t, tbl, db.Now())
	db.Close()

	db2 := Open()
	defer db2.Close()
	tbl2, _ := db2.CreateTable("t", ckptSchema())
	if _, err := Recover(db2, bytes.NewReader(ckpt.Bytes()), sink.Reader()); err != nil {
		t.Fatal(err)
	}
	got := tableState(t, tbl2, db2.Now())
	if _, ok := got[100]; !ok {
		t.Fatal("straddling transaction's insert lost after truncation+recovery")
	}
	assertSameState(t, want, got, "truncation with active txn")
}

// TestTruncationRespectsCommittedStraddlers pins the subtler truncation
// bound: transaction T appends its operations BELOW the checkpoint
// watermark but its commit record lands ABOVE it (so T is in the log tail,
// not the image). If T has already committed when truncation runs, T is no
// longer active — but truncating at the watermark would still drop its
// operation records while its commit record survives, replaying T as an
// empty transaction. The safe point must stay below T's begin LSN until a
// truncation covers T's commit record.
func TestTruncationRespectsCommittedStraddlers(t *testing.T) {
	sink := &wal.BufferSink{}
	db := Open(WithWAL(sink, nil))
	tbl, _ := db.CreateTable("t", ckptSchema())
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "v": Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	// T's operations are logged before the checkpoint cut...
	txT := db.Begin(ReadCommitted)
	if err := tbl.Insert(txT, Row{"id": Int(500), "v": Int(500)}); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	info, err := db.Checkpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// ...and T COMMITS (commit LSN > watermark) before truncation runs.
	mustCommit(t, txT)
	actual, err := db.TruncateWAL(info.LSN)
	if err != nil {
		t.Fatal(err)
	}
	if actual >= info.LSN {
		t.Fatalf("truncated to %d; must stay below the committed straddler's begin (watermark %d)", actual, info.LSN)
	}
	want := tableState(t, tbl, db.Now())
	db.Close()

	db2 := Open()
	defer db2.Close()
	tbl2, _ := db2.CreateTable("t", ckptSchema())
	if _, err := Recover(db2, bytes.NewReader(ckpt.Bytes()), sink.Reader()); err != nil {
		t.Fatal(err)
	}
	got := tableState(t, tbl2, db2.Now())
	if _, ok := got[500]; !ok {
		t.Fatal("committed straddler's insert lost: truncation dropped its op records")
	}
	assertSameState(t, want, got, "committed straddler")

	// A later checkpoint whose watermark covers T's commit record finally
	// lets truncation advance past T (the entry is pruned, not leaked).
	sink3 := &wal.BufferSink{}
	db3 := Open(WithWAL(sink3, nil))
	defer db3.Close()
	tbl3, _ := db3.CreateTable("t", ckptSchema())
	txS := db3.Begin(ReadCommitted)
	if err := tbl3.Insert(txS, Row{"id": Int(1), "v": Int(1)}); err != nil {
		t.Fatal(err)
	}
	var ck1 bytes.Buffer
	if _, err := db3.Checkpoint(&ck1); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, txS) // straddles ck1
	var ck2 bytes.Buffer
	info2, err := db3.Checkpoint(&ck2) // covers txS entirely
	if err != nil {
		t.Fatal(err)
	}
	actual2, err := db3.TruncateWAL(info2.LSN)
	if err != nil {
		t.Fatal(err)
	}
	if actual2 != info2.LSN {
		t.Fatalf("covered straddler still pins truncation: %d < %d", actual2, info2.LSN)
	}
}

// TestBackgroundCheckpointer: WithCheckpointEvery keeps fresh checkpoints
// flowing into the sink and truncates the log; latest checkpoint + retained
// log recovers the final state.
func TestBackgroundCheckpointer(t *testing.T) {
	sink := &wal.BufferSink{}
	cb := &CheckpointBuffer{}
	db := Open(WithWAL(sink, nil), WithCheckpointEvery(time.Millisecond, cb))
	tbl, _ := db.CreateTable("t", ckptSchema())
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 64; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "v": Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	deadline := time.Now().Add(5 * time.Second)
	for i := int64(0); ; i++ {
		tx := db.Begin(ReadCommitted)
		if err := tbl.Update(tx, i%64, Row{"v": Int(i)}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		if cb.Taken() >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never completed two rounds")
		}
	}
	want := tableState(t, tbl, db.Now())
	db.Close() // stops the checkpointer before we snapshot the log

	img, info, ok := cb.Latest()
	if !ok {
		t.Fatal("no checkpoint retained")
	}
	if info.LSN == 0 || db.WALInfo().TruncatedLSN == 0 {
		t.Fatalf("checkpointer did not truncate: info=%+v wal=%+v", info, db.WALInfo())
	}

	db2 := Open()
	defer db2.Close()
	tbl2, _ := db2.CreateTable("t", ckptSchema())
	if _, err := Recover(db2, img, sink.Reader()); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, want, tableState(t, tbl2, db2.Now()), "background checkpoint + tail")
}

// TestCheckpointSchemaMismatchFailsRestore: restoring into a database whose
// re-created tables do not match the image errors out loudly.
func TestCheckpointSchemaMismatchFailsRestore(t *testing.T) {
	db := Open()
	tbl, _ := db.CreateTable("t", ckptSchema())
	tx := db.Begin(ReadCommitted)
	if err := tbl.Insert(tx, Row{"id": Int(1), "v": Int(1)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	var ckpt bytes.Buffer
	if _, err := db.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := Open()
	defer db2.Close()
	if _, err := db2.CreateTable("t", NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "other", Type: Int64},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(db2, bytes.NewReader(ckpt.Bytes()), nil); err == nil {
		t.Fatal("schema mismatch not detected")
	}
}

// TestTornCheckpointFailsLoudly: unlike the log (whose torn tail is a clean
// crash cut), a torn checkpoint image must fail restore.
func TestTornCheckpointFailsLoudly(t *testing.T) {
	db := Open()
	tbl, _ := db.CreateTable("t", ckptSchema())
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 600; i++ { // multiple row-batch frames
		if err := tbl.Insert(tx, Row{"id": Int(i), "v": Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	var ckpt bytes.Buffer
	if _, err := db.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	db.Close()

	data := ckpt.Bytes()
	for _, cut := range []int{len(data) - 1, len(data) / 2, 20} {
		db2 := Open()
		if _, err := db2.CreateTable("t", ckptSchema()); err != nil {
			t.Fatal(err)
		}
		if _, err := Recover(db2, bytes.NewReader(data[:cut]), nil); err == nil {
			t.Fatalf("torn checkpoint (cut %d) restored without error", cut)
		}
		db2.Close()
	}
	// Corruption (bit flip mid-image) must also fail.
	mut := append([]byte(nil), data...)
	mut[len(mut)/3] ^= 0x40
	db2 := Open()
	defer db2.Close()
	if _, err := db2.CreateTable("t", ckptSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(db2, bytes.NewReader(mut), nil); !errors.Is(err, wal.ErrTornFrame) {
		// Corruption may also surface as a structural mismatch; any error is
		// acceptable, silence is not.
		if err == nil {
			t.Fatal("corrupt checkpoint restored without error")
		}
	}
}

// TestCheckpointWithoutWAL: a checkpoint of a WAL-less database restores on
// its own (watermark 0, no tail).
func TestCheckpointWithoutWAL(t *testing.T) {
	db := Open()
	tbl, _ := db.CreateTable("t", ckptSchema())
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "name": Str("s"), "v": Int(i * i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	want := tableState(t, tbl, db.Now())
	var ckpt bytes.Buffer
	info, err := db.Checkpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if info.LSN != 0 {
		t.Fatalf("watermark %d without WAL", info.LSN)
	}
	db.Close()

	db2 := Open()
	defer db2.Close()
	tbl2, _ := db2.CreateTable("t", ckptSchema())
	stats, err := Recover(db2, bytes.NewReader(ckpt.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointRows != 10 {
		t.Fatalf("restored %d rows, want 10", stats.CheckpointRows)
	}
	assertSameState(t, want, tableState(t, tbl2, db2.Now()), "checkpoint only")
}
