package lstore

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"lstore/internal/core"
	"lstore/internal/epoch"
	"lstore/internal/fault"
	"lstore/internal/txn"
	"lstore/internal/wal"
)

// Crash points on the commit and recovery paths (no-ops in production; the
// crash-torture suite trips them to prove every cut recovers cleanly).
var (
	cpCommitPreAppend  = fault.Register("db.commit.pre-append")
	cpCommitPostAppend = fault.Register("db.commit.post-append")
	cpRecoverPostRest  = fault.Register("recover.post-restore")
	cpRecoverPreRedo   = fault.Register("recover.pre-redo-txn")
)

// DB is a collection of tables sharing one transaction manager (one logical
// clock) and one epoch manager. All methods are safe for concurrent use.
type DB struct {
	tm *txn.Manager
	em *epoch.Manager

	mu     sync.RWMutex
	tables map[string]*Table // guarded by mu
	byID   []*Table          // guarded by mu
	logger *wal.Logger       // immutable after Open
	closed bool              // guarded by mu

	// commitMu gates the window between a transaction's in-memory commit
	// and its WAL commit record against Checkpoint's (timestamp, LSN) cut:
	// committers hold it shared across both steps, a checkpoint holds it
	// exclusively while capturing its read timestamp and log watermark, so
	// commit time <= checkpoint time iff commit LSN <= watermark — the
	// invariant that makes checkpoint + log-tail replay exactly-once.
	commitMu sync.RWMutex

	// txnLog tracks each logged transaction's begin and commit record LSNs
	// (commit 0 while active), maintained only when the WAL sink can
	// truncate. Truncation must never discard the operation records of a
	// transaction whose commit record survives above the truncation point:
	// neither a still-active transaction's, nor — the subtle case — one
	// whose operations landed below a checkpoint watermark but whose commit
	// record landed above it (it is in the log tail, not the image).
	// Entries are pruned once a truncation covers their commit record.
	activeMu sync.Mutex
	txnLog   map[uint64]txnLSNs // guarded by activeMu

	// ckptRoundMu serializes whole checkpoint rounds against Recover: a
	// checkpoint cut mid-restore would capture a half-loaded image and
	// could truncate the re-logged records out from under it.
	ckptRoundMu sync.Mutex

	// Background checkpointer (WithCheckpointEvery or StartCheckpointer).
	// ckptEvery/ckptSink are written before the checkpointer goroutine
	// starts and immutable afterwards.
	ckptEvery time.Duration
	ckptSink  CheckpointSink
	ckptStop  chan struct{} // guarded by mu; non-nil once the checkpointer ran
	ckptDone  chan struct{} // guarded by mu
	ckptOnce  sync.Once

	// noGroupCommit (WithoutGroupCommit) is applied to the logger once in
	// Open, after every option has run; immutable afterwards.
	noGroupCommit bool
}

// txnLSNs is one logged transaction's begin/commit record LSNs.
type txnLSNs struct{ begin, commit uint64 }

// Option configures Open.
type Option func(*DB)

// WithWAL attaches a redo-only write-ahead log: every committed
// transaction's operations become durable at its commit record (group
// commit). Replay a captured log with Recover. syncFn, if non-nil, runs at
// each flush (an fsync stand-in). A sink that implements
// wal.TruncatableSink (e.g. *wal.BufferSink) additionally enables log
// truncation at checkpoint watermarks (TruncateWAL, the background
// checkpointer) so the log stops growing without bound.
func WithWAL(sink io.Writer, syncFn func()) Option {
	return func(db *DB) { db.logger = wal.NewLogger(sink, syncFn) }
}

// WithoutGroupCommit makes every commit run its own WAL flush (and fsync)
// instead of batching concurrent committers onto one leader's flush. Group
// commit is on by default — one flush vouches for every commit record it
// covers, which is what makes an fsync-backed WALFile affordable under
// concurrent writers. This option exists for benchmarks measuring the
// batching against the flush-per-commit baseline, and for deployments that
// want strict one-commit-one-fsync behavior regardless of load.
func WithoutGroupCommit() Option {
	return func(db *DB) { db.noGroupCommit = true }
}

// TruncatableSink is a WAL sink that can discard a durable prefix — the
// capability TruncateWAL and the background checkpointer need. A
// file-backed implementation would delete sealed segment files below the
// watermark; WALBuffer is the ready-made in-memory implementation.
type TruncatableSink = wal.TruncatableSink

// WALBuffer is an in-memory, truncatable WAL sink (an alias for the wal
// package's BufferSink): pass one to WithWAL to get bounded-log behavior,
// read it back through Reader()/Bytes() for recovery.
type WALBuffer = wal.BufferSink

// ErrWALNotTruncatable is returned by TruncateWAL when the WAL sink cannot
// discard a prefix (it does not implement TruncatableSink).
var ErrWALNotTruncatable = wal.ErrNotTruncatable

// TruncateWAL discards the attached log's durable prefix up to lsn
// (typically a checkpoint's LSN watermark), bounded by the begin LSN of
// the oldest still-active transaction so no live transaction loses
// operation records. It returns the watermark actually used. The WAL sink
// must support prefix disposal (wal.ErrNotTruncatable otherwise).
func (db *DB) TruncateWAL(lsn uint64) (uint64, error) {
	if db.logger == nil {
		return 0, fmt.Errorf("lstore: no WAL attached")
	}
	safe := db.safeTruncationLSN(lsn)
	if err := db.logger.TruncateTo(safe); err != nil {
		return 0, err
	}
	db.pruneTxnLog(safe)
	return safe, nil
}

// WALInfo is a snapshot of the attached log's state (introspection).
type WALInfo struct {
	Attached     bool
	Appended     int    // records appended so far
	LastLSN      uint64 // highest LSN handed out by Append
	FlushedLSN   uint64 // highest durable LSN (LastLSN-FlushedLSN = flush lag)
	TruncatedLSN uint64 // highest LSN discarded by truncation (0 = none)
	Syncs        int    // flush count (group-commit effectiveness)
	GroupCommit  bool   // commits batch onto one leader's flush
	GroupBatches int    // commit batches flushed by a leader
	Err          error  // sticky poisoning error, nil while healthy
}

// WALInfo reports the attached log's state; the zero WALInfo when no WAL.
// The LSN counters come from one locked snapshot, so LastLSN-FlushedLSN
// (the flush-lag gauge admission control sheds on) never underflows from a
// flush landing between two separate reads.
func (db *DB) WALInfo() WALInfo {
	if db.logger == nil {
		return WALInfo{}
	}
	g := db.logger.Gauges()
	return WALInfo{
		Attached:     true,
		Appended:     g.Appended,
		LastLSN:      g.LastLSN,
		FlushedLSN:   g.FlushedLSN,
		TruncatedLSN: g.TruncatedLSN,
		Syncs:        g.Syncs,
		GroupCommit:  db.logger.GroupCommit(),
		GroupBatches: db.logger.GroupBatches(),
		Err:          g.Err,
	}
}

// FlushWAL forces every appended record durable (a drain step for servers
// shutting down; commits already flush themselves). No-op without a WAL.
func (db *DB) FlushWAL() error {
	if db.logger == nil {
		return nil
	}
	return db.logger.Flush()
}

// Open creates an empty in-memory database.
func Open(opts ...Option) *DB {
	db := &DB{
		tm:     txn.NewManager(),
		em:     epoch.NewManager(),
		tables: make(map[string]*Table),
		txnLog: make(map[uint64]txnLSNs),
	}
	for _, o := range opts {
		o(db)
	}
	if db.logger != nil && db.noGroupCommit {
		db.logger.SetGroupCommit(false)
	}
	if db.ckptEvery > 0 && db.ckptSink != nil {
		db.mu.Lock()
		stop, done := db.armCheckpointerLocked()
		db.mu.Unlock()
		go db.checkpointLoop(db.ckptEvery, db.ckptSink, stop, done)
	}
	return db
}

// Close stops the background checkpointer and every table's background
// merge worker.
func (db *DB) Close() {
	db.stopCheckpointer()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	db.closed = true
	for _, t := range db.tables {
		t.store.Close()
	}
}

func (db *DB) stopCheckpointer() {
	db.mu.Lock()
	stop, done := db.ckptStop, db.ckptDone
	db.mu.Unlock()
	if stop == nil {
		return
	}
	db.ckptOnce.Do(func() {
		close(stop)
		<-done
	})
}

// CreateTable creates a table with the given schema.
func (db *DB) CreateTable(name string, schema Schema, opts ...TableOptions) (*Table, error) {
	var o TableOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	cfg := core.Config{
		RangeSize:                 o.RangeSize,
		MergeBatch:                o.MergeBatch,
		CumulativeUpdates:         !o.DisableCumulativeUpdates,
		AutoMerge:                 !o.DisableAutoMerge,
		MergeColumnsIndependently: o.MergeColumnsIndependently,
		MergeWorkers:              o.MergeWorkers,
		ScanWorkers:               o.ScanWorkers,
		DisableCompression:        o.DisableCompression,
		DisableEncodedScan:        o.DisableEncodedScan,
		Spill:                     o.Spill,
		PoolBytes:                 o.PoolBytes,
		CheckpointSpillRefs:       o.CheckpointSpillRefs,
	}
	if o.RowLayout {
		cfg.Layout = core.RowLayout
	}
	for _, colName := range o.SecondaryIndexes {
		ci := schema.inner.ColIndex(colName)
		if ci < 0 {
			return nil, fmt.Errorf("lstore: secondary index on unknown column %q", colName)
		}
		cfg.SecondaryIndexColumns = append(cfg.SecondaryIndexColumns, ci)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, core.ErrClosed
	}
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("lstore: table %q exists", name)
	}
	store, err := core.NewStore(schema.inner, cfg, db.tm, db.em)
	if err != nil {
		return nil, err
	}
	t := &Table{db: db, name: name, id: uint64(len(db.byID)), store: store, schema: schema.inner}
	db.tables[name] = t
	db.byID = append(db.byID, t)
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// TableNames returns the table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Now returns the current logical time — a ready-made snapshot handle for
// Sum/Scan/GetAt.
func (db *DB) Now() Timestamp { return db.tm.Now() }

// Begin starts a transaction.
func (db *DB) Begin(level IsolationLevel) *Txn {
	t := db.tm.Begin(level)
	tx := &Txn{db: db, inner: t}
	if db.logger != nil {
		lsn, err := db.logger.Append(wal.Record{Kind: wal.KindBegin, TxnID: t.ID})
		if err != nil {
			// The log rejected the begin record (failing or poisoned
			// device): poison the transaction so Commit aborts it instead
			// of producing a commit record for operations the log never saw.
			tx.walErr = fmt.Errorf("lstore: WAL append failed: %w", err)
		} else {
			db.trackBegin(t.ID, lsn)
		}
	}
	return tx
}

// trackBegin records a transaction's begin-record LSN. Tracking only
// matters — and is only paid for — when the sink can truncate.
func (db *DB) trackBegin(id, lsn uint64) {
	if !db.logger.Truncatable() {
		return
	}
	db.activeMu.Lock()
	db.txnLog[id] = txnLSNs{begin: lsn}
	db.activeMu.Unlock()
}

// forgetTxn drops a transaction whose records can never replay (aborted,
// or its commit record failed to append).
func (db *DB) forgetTxn(id uint64) {
	if db.logger == nil {
		return
	}
	db.activeMu.Lock()
	delete(db.txnLog, id)
	db.activeMu.Unlock()
}

// noteCommitLSN records a committed transaction's commit-record LSN. The
// entry must survive until a truncation covers the commit record — see
// safeTruncationLSN — and is pruned by TruncateWAL.
func (db *DB) noteCommitLSN(id, lsn uint64) {
	db.activeMu.Lock()
	if tl, ok := db.txnLog[id]; ok {
		tl.commit = lsn
		db.txnLog[id] = tl
	}
	db.activeMu.Unlock()
}

// safeTruncationLSN bounds a truncation point by the begin LSN of every
// transaction whose commit record is NOT covered by it: still-active
// transactions (their commit record would resurrect a partial transaction
// whose ops were truncated) and transactions already committed above the
// point (their commit record survives in the tail and must find its ops).
func (db *DB) safeTruncationLSN(lsn uint64) uint64 {
	db.activeMu.Lock()
	defer db.activeMu.Unlock()
	safe := lsn
	for _, tl := range db.txnLog {
		if tl.commit != 0 && tl.commit <= lsn {
			continue // every record of this txn is below the point
		}
		if tl.begin-1 < safe {
			safe = tl.begin - 1
		}
	}
	return safe
}

// pruneTxnLog forgets transactions whose records were all discarded by a
// truncation at safe.
func (db *DB) pruneTxnLog(safe uint64) {
	db.activeMu.Lock()
	for id, tl := range db.txnLog {
		if tl.commit != 0 && tl.commit <= safe {
			delete(db.txnLog, id)
		}
	}
	db.activeMu.Unlock()
}

// ErrDurabilityUnknown wraps a WAL failure at the commit point: the
// transaction IS committed in memory (its effects are visible to subsequent
// reads and cannot be rolled back — append-only storage has no undo), but the
// commit record may not have reached the log. After a crash, replaying the
// log may or may not include the transaction. Callers that cannot tolerate
// the ambiguity should treat the database as failed.
var ErrDurabilityUnknown = fmt.Errorf("lstore: transaction committed in memory but WAL commit failed; durability unknown")

// Txn is one transaction handle. A handle is not safe for concurrent use.
type Txn struct {
	db        *DB
	inner     *txn.Txn
	committed bool // in-memory commit point passed; Abort becomes a no-op
	// walErr poisons the transaction: some of its log records (begin or an
	// operation) failed to append, so a commit record must never follow —
	// replay would resurrect the transaction with operations missing.
	// Commit aborts a poisoned transaction instead.
	walErr error
}

// poisonWAL records a WAL append failure on the transaction and returns the
// error the caller should surface. The in-memory operation already applied
// (append-only storage has no in-place undo), but its log record did not;
// the poisoned transaction's Commit aborts, turning those in-memory effects
// into invisible tombstones — the transaction vanishes atomically.
func (t *Txn) poisonWAL(err error) error {
	if t.walErr == nil {
		t.walErr = fmt.Errorf("lstore: WAL append failed: %w", err)
	}
	return t.walErr
}

// Commit validates (per isolation level) and commits. On ErrConflict the
// transaction has been aborted and may be retried by the caller. An error
// wrapping ErrDurabilityUnknown means the in-memory commit succeeded but the
// WAL append failed at the commit record — the effects are visible and
// irrevocable, only their durability is in doubt. If an EARLIER append (the
// begin record or an operation record) had failed, Commit instead aborts
// the transaction and returns the original append error: a durable commit
// record must never vouch for operation records the log does not hold.
func (t *Txn) Commit() error {
	if t.walErr != nil && !t.committed {
		t.db.tm.Abort(t.inner)
		t.db.forgetTxn(t.inner.ID)
		return fmt.Errorf("lstore: transaction aborted, log incomplete: %w", t.walErr)
	}
	if t.db.logger == nil {
		err := t.db.tm.Commit(t.inner)
		if err == nil {
			t.committed = true
		}
		return err
	}
	t.db.commitMu.RLock()
	err := t.db.tm.Commit(t.inner)
	if err != nil {
		t.db.commitMu.RUnlock()
		// A Commit retried after passing the in-memory commit point (e.g.
		// after ErrDurabilityUnknown) fails validation here too; it must not
		// append an abort record that could contradict the commit record.
		if !t.committed {
			t.db.logger.Append(wal.Record{Kind: wal.KindAbort, TxnID: t.inner.ID}) //wal:ignore-err abort record is advisory; replay discards uncommitted txns without it
			t.db.forgetTxn(t.inner.ID)
		}
		return err
	}
	t.committed = true
	cpCommitPreAppend.Hit() // crash here: in-memory commit durable nowhere — recovery must drop it
	commitLSN, werr := t.db.logger.AppendCommit(t.inner.ID)
	t.db.commitMu.RUnlock()
	if werr != nil {
		// The commit record never became durable (and the logger is now
		// poisoned, so no truncation can run either): the entry is moot.
		t.db.forgetTxn(t.inner.ID)
		return fmt.Errorf("%w: %v", ErrDurabilityUnknown, werr)
	}
	cpCommitPostAppend.Hit() // crash here: commit durable but unacknowledged — recovery may keep it
	t.db.noteCommitLSN(t.inner.ID, commitLSN)
	return nil
}

// Abort rolls the transaction back (its appended versions become
// tombstones; nothing is physically removed). After a Commit that passed the
// in-memory commit point — including one that failed with
// ErrDurabilityUnknown — Abort is a no-op: in particular it must NOT append
// an abort record that could contradict an already-durable commit record on
// recovery.
func (t *Txn) Abort() {
	if t.committed {
		return
	}
	t.db.tm.Abort(t.inner)
	if t.db.logger != nil {
		t.db.logger.Append(wal.Record{Kind: wal.KindAbort, TxnID: t.inner.ID}) //wal:ignore-err abort record is advisory; replay discards uncommitted txns without it
		t.db.forgetTxn(t.inner.ID)
	}
}

// BeginTime returns the transaction's begin timestamp.
func (t *Txn) BeginTime() Timestamp { return t.inner.Begin }

// RecoverStats reports what one Recover call did.
type RecoverStats struct {
	// Watermark is the checkpoint's LSN watermark (0 without a checkpoint):
	// only transactions whose commit record has a larger LSN were redone.
	Watermark uint64
	// CheckpointRows counts rows restored through the bulk-load path.
	CheckpointRows int64
	// SkippedTxns counts committed transactions at or below the watermark —
	// already inside the checkpoint image, not replayed.
	SkippedTxns int
	// RedoneTxns/RedoneOps count the log-tail transactions re-applied and
	// their operation records.
	RedoneTxns int
	RedoneOps  int
}

// Recover rebuilds db from a checkpoint image (written by DB.Checkpoint,
// nil for none) and a redo-log tail captured through WithWAL (nil for
// none). The checkpoint restores every table's committed rows through the
// bulk-load fast path; the log tail then redoes, in commit order, exactly
// the committed transactions whose commit record has LSN greater than the
// checkpoint's watermark — uncommitted and aborted transactions vanish, and
// transactions the checkpoint already covers are skipped, so restart cost
// is bounded by checkpoint size plus log tail, not total history. Handing
// Recover the full log (instead of a truncated tail) is always safe: the
// watermark filter makes replay idempotent with respect to the checkpoint.
//
// Tables must have been re-created (same names, same order, same schemas)
// before calling Recover. The recovered state is logically equivalent:
// latest committed values, uniqueness and indexes are restored; version
// timestamps are RE-ISSUED, so pre-crash snapshot handles (Timestamps) are
// meaningless against the recovered database and the version history
// collapses to the recovered states themselves.
//
// If db was opened WithWAL, recovery re-logs everything it applies — the
// restored rows as one synthetic bulk-load transaction and each redone
// transaction with fresh IDs — so the NEW log alone rebuilds the recovered
// state: recover → write → crash → recover round-trips with no dependency
// on the pre-crash log.
func Recover(db *DB, checkpoint io.Reader, logTail io.Reader) (RecoverStats, error) {
	var stats RecoverStats
	// Exclude whole background-checkpointer rounds for the duration: a
	// checkpoint cut mid-restore would capture a half-loaded image and its
	// truncation could drop the re-logged records out from under it.
	db.ckptRoundMu.Lock()
	defer db.ckptRoundMu.Unlock()
	if checkpoint != nil {
		if err := db.restoreCheckpoint(checkpoint, &stats); err != nil {
			return stats, err
		}
	}
	cpRecoverPostRest.Hit() // crash here: double-crash between restore and tail redo
	if logTail != nil {
		records, err := wal.ReadAll(logTail)
		if err != nil {
			return stats, err
		}
		for _, group := range wal.CommittedTxns(records, 0) {
			if group.CommitLSN <= stats.Watermark {
				stats.SkippedTxns++
				continue
			}
			if err := db.redoTxn(group, &stats); err != nil {
				return stats, err
			}
		}
	}
	if db.logger != nil {
		if err := db.logger.Flush(); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// redoTxn re-applies one committed transaction's operations under a fresh
// transaction, re-logging them (and the commit) when a WAL is attached.
func (db *DB) redoTxn(group wal.TxnOps, stats *RecoverStats) error {
	cpRecoverPreRedo.Hit() // crash here: double-crash mid-replay
	tx := db.tm.Begin(txn.ReadCommitted)
	relog := db.logger != nil
	for _, rec := range group.Ops {
		db.mu.RLock()
		if rec.Table >= uint64(len(db.byID)) {
			db.mu.RUnlock()
			db.tm.Abort(tx)
			return fmt.Errorf("lstore: recovery references unknown table %d", rec.Table)
		}
		tbl := db.byID[rec.Table]
		db.mu.RUnlock()
		var opErr error
		switch rec.Kind {
		case wal.KindInsert:
			vals := make([]Value, len(rec.TVals))
			for i, tv := range rec.TVals {
				vals[i] = fromTyped(tv)
			}
			opErr = tbl.store.Insert(tx, vals)
		case wal.KindUpdate:
			cols := make([]int, len(rec.Cols))
			vals := make([]Value, len(rec.TVals))
			for i, c := range rec.Cols {
				cols[i] = int(c)
			}
			for i, tv := range rec.TVals {
				vals[i] = fromTyped(tv)
			}
			opErr = tbl.store.Update(tx, unzig(rec.Key), cols, vals)
		case wal.KindDelete:
			opErr = tbl.store.Delete(tx, unzig(rec.Key))
		}
		if opErr != nil {
			db.tm.Abort(tx)
			return fmt.Errorf("lstore: redo txn %d LSN %d: %w", group.TxnID, rec.LSN, opErr)
		}
		if relog {
			nrec := rec
			nrec.LSN = 0
			nrec.TxnID = tx.ID
			if _, err := db.logger.Append(nrec); err != nil {
				db.tm.Abort(tx)
				return fmt.Errorf("lstore: re-log during recovery: %w", err)
			}
		}
	}
	// Gate the in-memory commit and its re-logged commit record together so
	// a concurrent checkpoint cannot cut between them. The commit record is
	// buffered (not flushed) — Recover flushes once at the end.
	db.commitMu.RLock()
	err := db.tm.Commit(tx)
	if err == nil && relog {
		_, err = db.logger.Append(wal.Record{Kind: wal.KindCommit, TxnID: tx.ID})
	}
	db.commitMu.RUnlock()
	if err != nil {
		return fmt.Errorf("lstore: redo txn %d: %w", group.TxnID, err)
	}
	stats.RedoneTxns++
	stats.RedoneOps += len(group.Ops)
	return nil
}

func fromTyped(tv wal.TypedVal) Value {
	switch tv.Kind {
	case wal.TVInt:
		return Int(tv.I)
	case wal.TVString:
		return Str(tv.S)
	default:
		return Null()
	}
}

// Key slots in log records are zigzag-coded int64 keys.
func zig(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
