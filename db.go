package lstore

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"lstore/internal/core"
	"lstore/internal/epoch"
	"lstore/internal/txn"
	"lstore/internal/wal"
)

// DB is a collection of tables sharing one transaction manager (one logical
// clock) and one epoch manager. All methods are safe for concurrent use.
type DB struct {
	tm *txn.Manager
	em *epoch.Manager

	mu     sync.RWMutex
	tables map[string]*Table
	byID   []*Table
	logger *wal.Logger
	closed bool
}

// Option configures Open.
type Option func(*DB)

// WithWAL attaches a redo-only write-ahead log: every committed
// transaction's operations become durable at its commit record (group
// commit). Replay a captured log with Recover. syncFn, if non-nil, runs at
// each flush (an fsync stand-in).
func WithWAL(sink io.Writer, syncFn func()) Option {
	return func(db *DB) { db.logger = wal.NewLogger(sink, syncFn) }
}

// Open creates an empty in-memory database.
func Open(opts ...Option) *DB {
	db := &DB{
		tm:     txn.NewManager(),
		em:     epoch.NewManager(),
		tables: make(map[string]*Table),
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// Close stops every table's background merge worker.
func (db *DB) Close() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	db.closed = true
	for _, t := range db.tables {
		t.store.Close()
	}
}

// CreateTable creates a table with the given schema.
func (db *DB) CreateTable(name string, schema Schema, opts ...TableOptions) (*Table, error) {
	var o TableOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	cfg := core.Config{
		RangeSize:                 o.RangeSize,
		MergeBatch:                o.MergeBatch,
		CumulativeUpdates:         !o.DisableCumulativeUpdates,
		AutoMerge:                 !o.DisableAutoMerge,
		MergeColumnsIndependently: o.MergeColumnsIndependently,
		MergeWorkers:              o.MergeWorkers,
		ScanWorkers:               o.ScanWorkers,
	}
	if o.RowLayout {
		cfg.Layout = core.RowLayout
	}
	for _, colName := range o.SecondaryIndexes {
		ci := schema.inner.ColIndex(colName)
		if ci < 0 {
			return nil, fmt.Errorf("lstore: secondary index on unknown column %q", colName)
		}
		cfg.SecondaryIndexColumns = append(cfg.SecondaryIndexColumns, ci)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, core.ErrClosed
	}
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("lstore: table %q exists", name)
	}
	store, err := core.NewStore(schema.inner, cfg, db.tm, db.em)
	if err != nil {
		return nil, err
	}
	t := &Table{db: db, name: name, id: uint64(len(db.byID)), store: store, schema: schema.inner}
	db.tables[name] = t
	db.byID = append(db.byID, t)
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// TableNames returns the table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Now returns the current logical time — a ready-made snapshot handle for
// Sum/Scan/GetAt.
func (db *DB) Now() Timestamp { return db.tm.Now() }

// Begin starts a transaction.
func (db *DB) Begin(level IsolationLevel) *Txn {
	t := db.tm.Begin(level)
	if db.logger != nil {
		db.logger.Append(wal.Record{Kind: wal.KindBegin, TxnID: t.ID}) //nolint:errcheck
	}
	return &Txn{db: db, inner: t}
}

// ErrDurabilityUnknown wraps a WAL failure at the commit point: the
// transaction IS committed in memory (its effects are visible to subsequent
// reads and cannot be rolled back — append-only storage has no undo), but the
// commit record may not have reached the log. After a crash, replaying the
// log may or may not include the transaction. Callers that cannot tolerate
// the ambiguity should treat the database as failed.
var ErrDurabilityUnknown = fmt.Errorf("lstore: transaction committed in memory but WAL commit failed; durability unknown")

// Txn is one transaction handle. A handle is not safe for concurrent use.
type Txn struct {
	db        *DB
	inner     *txn.Txn
	committed bool // in-memory commit point passed; Abort becomes a no-op
}

// Commit validates (per isolation level) and commits. On ErrConflict the
// transaction has been aborted and may be retried by the caller. An error
// wrapping ErrDurabilityUnknown means the in-memory commit succeeded but the
// WAL append failed — the effects are visible and irrevocable, only their
// durability is in doubt.
func (t *Txn) Commit() error {
	if err := t.db.tm.Commit(t.inner); err != nil {
		// A Commit retried after passing the in-memory commit point (e.g.
		// after ErrDurabilityUnknown) fails validation here too; it must not
		// append an abort record that could contradict the commit record.
		if t.db.logger != nil && !t.committed {
			t.db.logger.Append(wal.Record{Kind: wal.KindAbort, TxnID: t.inner.ID}) //nolint:errcheck
		}
		return err
	}
	t.committed = true
	if t.db.logger != nil {
		if _, err := t.db.logger.AppendCommit(t.inner.ID); err != nil {
			return fmt.Errorf("%w: %v", ErrDurabilityUnknown, err)
		}
	}
	return nil
}

// Abort rolls the transaction back (its appended versions become
// tombstones; nothing is physically removed). After a Commit that passed the
// in-memory commit point — including one that failed with
// ErrDurabilityUnknown — Abort is a no-op: in particular it must NOT append
// an abort record that could contradict an already-durable commit record on
// recovery.
func (t *Txn) Abort() {
	if t.committed {
		return
	}
	t.db.tm.Abort(t.inner)
	if t.db.logger != nil {
		t.db.logger.Append(wal.Record{Kind: wal.KindAbort, TxnID: t.inner.ID}) //nolint:errcheck
	}
}

// BeginTime returns the transaction's begin timestamp.
func (t *Txn) BeginTime() Timestamp { return t.inner.Begin }

// Recover replays a redo log captured through WithWAL into db: committed
// transactions are re-applied in commit order; uncommitted and aborted ones
// vanish. Tables must have been re-created (same names, same order, same
// schemas) before calling Recover. The recovered state is logically
// equivalent: latest committed values, uniqueness and indexes are restored;
// version timestamps are re-issued.
func Recover(db *DB, logData io.Reader) error {
	records, err := wal.ReadAll(logData)
	if err != nil {
		return err
	}
	return wal.RedoInCommitOrder(records, func(rec wal.Record) error {
		db.mu.RLock()
		if rec.Table >= uint64(len(db.byID)) {
			db.mu.RUnlock()
			return fmt.Errorf("lstore: recovery references unknown table %d", rec.Table)
		}
		tbl := db.byID[rec.Table]
		db.mu.RUnlock()
		tx := db.tm.Begin(txn.ReadCommitted)
		var opErr error
		switch rec.Kind {
		case wal.KindInsert:
			vals := make([]Value, len(rec.TVals))
			for i, tv := range rec.TVals {
				vals[i] = fromTyped(tv)
			}
			opErr = tbl.store.Insert(tx, vals)
		case wal.KindUpdate:
			cols := make([]int, len(rec.Cols))
			vals := make([]Value, len(rec.TVals))
			for i, c := range rec.Cols {
				cols[i] = int(c)
			}
			for i, tv := range rec.TVals {
				vals[i] = fromTyped(tv)
			}
			opErr = tbl.store.Update(tx, unzig(rec.Key), cols, vals)
		case wal.KindDelete:
			opErr = tbl.store.Delete(tx, unzig(rec.Key))
		}
		if opErr != nil {
			db.tm.Abort(tx)
			return opErr
		}
		return db.tm.Commit(tx)
	})
}

func fromTyped(tv wal.TypedVal) Value {
	switch tv.Kind {
	case wal.TVInt:
		return Int(tv.I)
	case wal.TVString:
		return Str(tv.S)
	default:
		return Null()
	}
}

// Key slots in log records are zigzag-coded int64 keys.
func zig(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
