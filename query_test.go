package lstore

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestQueryEndToEnd exercises every terminal verb and plan shape on a
// quiesced table: filtered Rows through the RowView cursor, probe and scan
// plans, aggregates, Count, empty plans, and null predicates.
func TestQueryEndToEnd(t *testing.T) {
	db := Open()
	defer db.Close()
	tbl, err := db.CreateTable("accounts", NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "owner", Type: String},
		Column{Name: "balance", Type: Int64},
		Column{Name: "region", Type: Int64},
	), TableOptions{RangeSize: 64, DisableAutoMerge: true, SecondaryIndexes: []string{"region"}})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 200; i++ {
		if err := tbl.Insert(tx, Row{
			"id": Int(i), "owner": Str("o"), "balance": Int(i * 10), "region": Int(i % 5),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tbl.Merge()
	ts := db.Now()

	var n, total int64
	err = tbl.Query().Select("balance").Where(Between("balance", Int(100), Int(199))).At(ts).
		Rows(func(r *RowView) bool {
			n++
			total += r.Int("balance")
			return true
		})
	if err != nil || n != 10 || total != 1450 {
		t.Fatalf("filtered rows: n=%d total=%d err=%v", n, total, err)
	}

	keys, err := tbl.Query().Where(Eq("region", Int(3))).At(ts).Keys()
	if err != nil || len(keys) != 40 {
		t.Fatalf("probe keys: %d %v", len(keys), err)
	}

	res, err := tbl.Query().Where(Eq("region", Int(3))).At(ts).
		Aggregate(Sum("balance"), Count(), Min("balance"), Max("balance"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows(1) != 40 || res.Int(2) != 30 || res.Int(3) != 1980 {
		t.Fatalf("agg: sum=%d count=%d min=%d max=%d", res.Int(0), res.Int(1), res.Int(2), res.Int(3))
	}

	c, err := tbl.Query().Where(Gt("balance", Int(1500))).At(ts).Count()
	if err != nil || c != 49 {
		t.Fatalf("count=%d err=%v", c, err)
	}

	// Empty plan: a string the dictionary has never seen.
	if ks, err := tbl.Query().Where(Eq("owner", Str("nobody"))).At(ts).Keys(); err != nil || len(ks) != 0 {
		t.Fatalf("empty plan: %v %v", ks, err)
	}
	// Min/Max over an empty match set decode to Null.
	res, err = tbl.Query().Where(Eq("owner", Str("nobody"))).At(ts).Aggregate(Min("balance"))
	if err != nil || !res.Value(0).IsNull() || res.Rows(0) != 0 {
		t.Fatalf("empty-plan aggregate: %v rows=%d err=%v", res.Value(0), res.Rows(0), err)
	}

	// Null predicates across an update that nulls a column.
	tx = db.Begin(ReadCommitted)
	if err := tbl.Update(tx, 7, Row{"owner": Null()}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if c, err := tbl.Query().Where(IsNull("owner")).Count(); err != nil || c != 1 {
		t.Fatalf("IsNull count=%d err=%v", c, err)
	}
	if c, err := tbl.Query().Where(NotNull("owner")).Count(); err != nil || c != 199 {
		t.Fatalf("NotNull count=%d err=%v", c, err)
	}
	// Eq(Null) is IS NULL; Ne(Null) is IS NOT NULL.
	if ks, err := tbl.Query().Where(Eq("owner", Null())).Keys(); err != nil || len(ks) != 1 || ks[0] != 7 {
		t.Fatalf("Eq(Null): %v %v", ks, err)
	}
	if c, err := tbl.Query().Where(Ne("owner", Null())).Count(); err != nil || c != 199 {
		t.Fatalf("Ne(Null) count=%d err=%v", c, err)
	}

	// The old snapshot still sees the pre-update state (time travel).
	if c, err := tbl.Query().Where(IsNull("owner")).At(ts).Count(); err != nil || c != 0 {
		t.Fatalf("time-travel IsNull count=%d err=%v", c, err)
	}

	// Early stop is exact.
	n = 0
	err = tbl.Query().At(ts).Rows(func(r *RowView) bool {
		n++
		return n < 17
	})
	if err != nil || n != 17 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}

	// Aggregate with no aggregates is an error.
	if _, err := tbl.Query().Aggregate(); err == nil {
		t.Fatal("Aggregate() accepted")
	}

	// A bare Count (the one plan that materializes no columns) must see
	// deletes newer than the last merge.
	tx = db.Begin(ReadCommitted)
	if err := tbl.Delete(tx, 3); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if c, err := tbl.Query().Count(); err != nil || c != 199 {
		t.Fatalf("bare Count after unmerged delete = %d, err=%v", c, err)
	}
}

// ---------------------------------------------------------------------------
// The API-level oracle: every Query plan against per-key GetAt chain walks
// (the public face of the per-slot readCols oracle) under concurrent updates
// and background merges.

// queryOracleRec is one live record's oracle state at a snapshot.
type queryOracleRec struct {
	key                    int64
	owner, balance, region Value
}

// queryOracleRows materializes every live record at ts through GetAt — one
// readCols chain walk per key, no scan engine involved.
func queryOracleRows(t *testing.T, tbl *Table, ts Timestamp, rows int64) []queryOracleRec {
	t.Helper()
	var out []queryOracleRec
	for key := int64(0); key < rows; key++ {
		row, ok, err := tbl.GetAt(ts, key, "owner", "balance", "region")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		out = append(out, queryOracleRec{key: key, owner: row["owner"], balance: row["balance"], region: row["region"]})
	}
	return out
}

func equalOracleRows(a, b []queryOracleRec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].key != b[i].key || !a[i].owner.Equal(b[i].owner) ||
			!a[i].balance.Equal(b[i].balance) || !a[i].region.Equal(b[i].region) {
			return false
		}
	}
	return true
}

// runQueryOracle drives concurrent single-record writers and the background
// merge while the main goroutine sandwiches every Query plan between two
// GetAt-oracle materializations at a fixed snapshot (iterations where the
// oracles disagree — a pre-commit flip landed mid-comparison — are skipped,
// as in the core scan oracle).
func runQueryOracle(t *testing.T, workers int, perColumnMerge bool, iters int, mut ...func(*TableOptions)) {
	db := Open()
	defer db.Close()
	opts := TableOptions{
		RangeSize: 64, MergeBatch: 8, ScanWorkers: workers,
		MergeColumnsIndependently: perColumnMerge,
		SecondaryIndexes:          []string{"region"},
	}
	for _, m := range mut {
		m(&opts)
	}
	tbl, err := db.CreateTable("accounts", NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "owner", Type: String},
		Column{Name: "balance", Type: Int64},
		Column{Name: "region", Type: Int64},
	), opts)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 300
	owners := []string{"ada", "bob", "cyd", "dee"}
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < rows; i++ {
		if err := tbl.Insert(tx, Row{
			"id": Int(i), "owner": Str(owners[i%4]), "balance": Int(i * 10), "region": Int(i % 7),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tbl.Merge()

	// Writers: every transaction commits at most ONE visible record flip
	// (the sandwich relies on per-key monotone flips, as in the core test).
	// Deleted keys are never reinserted: the GetAt oracle resolves a key
	// through the primary index, which points only at the key's LATEST base
	// record — a scan at an old snapshot correctly still sees a prior
	// incarnation the oracle cannot reach. (Reincarnation is covered by the
	// per-slot core oracle in internal/core/scan_test.go.)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin(ReadCommitted)
				key := r.Int63n(rows)
				var err error
				switch r.Intn(20) {
				case 0:
					err = tbl.Delete(tx, key)
				case 1, 2:
					err = tbl.Update(tx, key, Row{"owner": Null()})
				case 3, 4:
					err = tbl.Update(tx, key, Row{"owner": Str(owners[r.Intn(4)])})
				case 5, 6:
					err = tbl.Update(tx, key, Row{"region": Int(r.Int63n(7)), "balance": Int(r.Int63n(4000))})
				default:
					err = tbl.Update(tx, key, Row{"balance": Int(r.Int63n(4000))})
				}
				if err != nil || r.Intn(16) == 0 {
					tx.Abort()
					continue
				}
				tx.Commit() //nolint:errcheck
			}
		}(int64(w) + 1)
	}

	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < iters; iter++ {
		ts := db.Now()
		wlo := r.Int63n(2000)
		whi := wlo + r.Int63n(2000)
		k := r.Int63n(7)

		oracleA := queryOracleRows(t, tbl, ts, rows)

		// Scan plan with projection through the RowView cursor.
		var got []queryOracleRec
		err := tbl.Query().Select("owner", "balance", "region").
			Where(Between("balance", Int(wlo), Int(whi))).At(ts).
			Rows(func(rv *RowView) bool {
				got = append(got, queryOracleRec{
					key: rv.Key(), owner: rv.Value("owner"),
					balance: rv.Value("balance"), region: rv.Value("region"),
				})
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
		// Probe plan.
		probeKeys, err := tbl.Query().Where(Eq("region", Int(k))).At(ts).Keys()
		if err != nil {
			t.Fatal(err)
		}
		// Aggregates over the probe plan, plus the Sum wrapper.
		agg, err := tbl.Query().Where(Eq("region", Int(k))).At(ts).
			Aggregate(Sum("balance"), Count(), Min("balance"), Max("balance"))
		if err != nil {
			t.Fatal(err)
		}
		sumGot, sumRows, err := tbl.Sum(ts, "balance")
		if err != nil {
			t.Fatal(err)
		}
		nullCount, err := tbl.Query().Where(IsNull("owner")).At(ts).Count()
		if err != nil {
			t.Fatal(err)
		}

		oracleB := queryOracleRows(t, tbl, ts, rows)
		if !equalOracleRows(oracleA, oracleB) {
			continue // a flip landed mid-iteration; comparison unsound
		}

		// Filtered rows (engine delivers RID order; live keys are unique, so
		// sort both sides by key).
		var want []queryOracleRec
		for _, rec := range oracleA {
			if b := rec.balance.Int(); !rec.balance.IsNull() && b >= wlo && b <= whi {
				want = append(want, rec)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i].key < got[j].key })
		if !equalOracleRows(got, want) {
			t.Fatalf("iter %d: filtered Rows diverge: got %d, want %d", iter, len(got), len(want))
		}

		var wantKeys []int64
		var wantSum, wantCount, wantMin, wantMax int64
		var aggSeen bool
		for _, rec := range oracleA {
			if rec.region.IsNull() || rec.region.Int() != k {
				continue
			}
			wantKeys = append(wantKeys, rec.key)
			wantCount++
			if !rec.balance.IsNull() {
				b := rec.balance.Int()
				wantSum += b
				if !aggSeen || b < wantMin {
					wantMin = b
				}
				if !aggSeen || b > wantMax {
					wantMax = b
				}
				aggSeen = true
			}
		}
		sort.Slice(probeKeys, func(i, j int) bool { return probeKeys[i] < probeKeys[j] })
		if len(probeKeys) != len(wantKeys) {
			t.Fatalf("iter %d: probe Keys diverge: got %d, want %d", iter, len(probeKeys), len(wantKeys))
		}
		for i := range wantKeys {
			if probeKeys[i] != wantKeys[i] {
				t.Fatalf("iter %d: probe key %d = %d, want %d", iter, i, probeKeys[i], wantKeys[i])
			}
		}
		if agg.Int(0) != wantSum || agg.Rows(1) != wantCount {
			t.Fatalf("iter %d: aggregate sum/count (%d,%d), want (%d,%d)",
				iter, agg.Int(0), agg.Rows(1), wantSum, wantCount)
		}
		if aggSeen && (agg.Int(2) != wantMin || agg.Int(3) != wantMax) {
			t.Fatalf("iter %d: min/max (%d,%d), want (%d,%d)",
				iter, agg.Int(2), agg.Int(3), wantMin, wantMax)
		}
		if !aggSeen && (!agg.Value(2).IsNull() || !agg.Value(3).IsNull()) {
			t.Fatalf("iter %d: min/max over empty set not null", iter)
		}

		var wantTotal, wantTotalRows, wantNulls int64
		for _, rec := range oracleA {
			if !rec.balance.IsNull() {
				wantTotal += rec.balance.Int()
				wantTotalRows++
			}
			if rec.owner.IsNull() {
				wantNulls++
			}
		}
		if sumGot != wantTotal || sumRows != wantTotalRows {
			t.Fatalf("iter %d: Sum wrapper (%d,%d), want (%d,%d)",
				iter, sumGot, sumRows, wantTotal, wantTotalRows)
		}
		if nullCount != wantNulls {
			t.Fatalf("iter %d: IsNull Count %d, want %d", iter, nullCount, wantNulls)
		}
	}
	close(stop)
	wg.Wait()
}

// TestQueryPlansMatchGetAtOracle: sequential scans, full-range merges.
func TestQueryPlansMatchGetAtOracle(t *testing.T) {
	runQueryOracle(t, 1, false, 30)
}

// TestQueryPlansMatchGetAtOracleParallel: the worker pool forced on and
// per-column background merges — run with -race this is the concurrency test
// for parallel filtered scans at the API layer.
func TestQueryPlansMatchGetAtOracleParallel(t *testing.T) {
	runQueryOracle(t, 4, true, 30)
}

// TestQueryPlansMatchGetAtOracleSpill: the same property with base pages
// spilled behind a pool capped at a handful of frames — parallel scans,
// background merges, and pool evictions racing, with -race the API-layer
// concurrency test for beyond-RAM base storage.
func TestQueryPlansMatchGetAtOracleSpill(t *testing.T) {
	runQueryOracle(t, 4, true, 30, func(o *TableOptions) {
		o.Spill = NewMemSpill()
		o.PoolBytes = 2048
	})
}
